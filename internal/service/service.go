// Package service is the serving subsystem behind cmd/nwserve: a
// long-lived, concurrent front end to the nwforest library. It layers
//
//   - a Store that ingests graphs (uploads or server-side files),
//     content-addresses them by SHA-256, and keeps parsed graphs warm in
//     an LRU;
//   - a job system — a bounded queue feeding a worker pool — that runs
//     any public entry point with a per-job context, cancellation and
//     deadline, returning job IDs that clients poll or wait on;
//   - a result cache keyed by (graph hash, algorithm, canonical Options
//     key), so a repeated identical request is served without
//     recomputation; all algorithms are deterministic given Options.Seed,
//     so cold and cached paths return bit-identical results.
//
// The HTTP surface over this API lives in http.go; cmd/nwserve is a thin
// main around the two.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nwforest"
	"nwforest/internal/algo"
	"nwforest/internal/cluster"
	"nwforest/internal/dist"
	"nwforest/internal/dynamic"
	"nwforest/internal/graph"
	"nwforest/internal/persist"
	"nwforest/internal/telemetry"
	"nwforest/internal/trace"
)

// Config sizes a Service. The zero value gets sensible defaults.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker
	// (default 256). Submit fails with ErrQueueFull beyond it.
	QueueDepth int
	// GraphCapacity is how many parsed graphs the store keeps warm
	// (default 64).
	GraphCapacity int
	// MaxStoreBytes bounds the raw bytes of upload-backed graphs the
	// store retains for re-parsing; oldest uploads are forgotten beyond
	// it (default service.DefaultMaxSourceBytes).
	MaxStoreBytes int64
	// IngestDir, when non-empty, permits POST /graphs {"path": ...} to
	// ingest files from (strictly within) that directory. Empty disables
	// server-side file ingestion entirely — otherwise the endpoint would
	// let any HTTP client probe and partially read the server's
	// filesystem.
	IngestDir string
	// ResultCapacity is the result cache size in entries (default 1024).
	ResultCapacity int
	// ResultCacheBytes bounds the result cache's approximate resident
	// bytes — results carry per-edge slices, so entries alone are not a
	// memory bound (default service.DefaultMaxCacheBytes). The same
	// budget bounds the results pinned by retained finished jobs.
	ResultCacheBytes int64
	// RetainJobs bounds how many finished jobs stay pollable before the
	// oldest are forgotten (default 1024).
	RetainJobs int
	// DefaultTimeout applies to jobs that do not set TimeoutMillis
	// (default 0 = no deadline).
	DefaultTimeout time.Duration
	// AnytimeGrace bounds how long a worker waits, after an anytime job's
	// deadline fires, for the algorithm to surface its best checkpoint
	// (the run aborts at the next per-round or per-cluster context check,
	// so the wait is normally milliseconds; the grace only matters inside
	// the few non-preemptible stretches). Beyond it the job is canceled
	// like a non-anytime job (default 5s).
	AnytimeGrace time.Duration
	// DataDir, when non-empty, enables the durability tier
	// (internal/persist): every ingested graph and computed result is
	// written through to this directory before the request is
	// acknowledged, and Open recovers the store, version lineage and
	// result cache from it on restart. Empty (the default) keeps the
	// service purely in-memory.
	DataDir string
	// SnapshotInterval is how often the durability tier checkpoints its
	// state and truncates the WAL (default 5m; < 0 disables the periodic
	// loop, leaving only the final snapshot on Close). Ignored without
	// DataDir.
	SnapshotInterval time.Duration
	// RetentionAge, when > 0, lets snapshot-time sweeps delete persisted
	// graph files older than this even if still referenced; 0 keeps
	// referenced files indefinitely. Unreferenced files and the disk
	// byte budget (MaxDiskBytes) are always enforced. A referenced graph
	// whose file is swept keeps serving from memory but loses durability
	// until identical bytes are uploaded again.
	RetentionAge time.Duration
	// MaxDiskBytes bounds the total bytes of persisted graph files;
	// snapshot-time sweeps delete the oldest files beyond it, even while
	// still referenced. 0 (the default) inherits MaxStoreBytes so disk
	// roughly tracks the in-memory upload budget; < 0 disables the disk
	// byte bound entirely. Ignored without DataDir.
	MaxDiskBytes int64
	// Logger, when non-nil, receives structured request and job logs and
	// the persistence tier's error reports. Nil disables logging.
	Logger *slog.Logger
	// DisableTracing turns the per-job span recorder off entirely: no
	// recorder is allocated, the dist charge sites pay one nil check,
	// and GET /jobs/{id}/trace returns 404. The default (false) records
	// a trace for every job.
	DisableTracing bool
	// TraceRoundEvery samples individual engine rounds into traces as
	// instant events: every Nth round of every engine run (0, the
	// default, records no round events — phase spans only).
	TraceRoundEvery int
	// TraceCapacity / TraceMaxBytes bound the ring of finished traces
	// (defaults 512 entries / 8 MiB); the oldest traces are evicted
	// beyond either budget.
	TraceCapacity int
	TraceMaxBytes int64
	// HistoryCapacity / HistoryMaxBytes bound the terminal-job history
	// served by GET /jobs/history (defaults 4096 entries / 8 MiB).
	HistoryCapacity int
	HistoryMaxBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.GraphCapacity <= 0 {
		c.GraphCapacity = 64
	}
	if c.ResultCapacity <= 0 {
		c.ResultCapacity = 1024
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = 5 * time.Minute
	}
	if c.AnytimeGrace <= 0 {
		c.AnytimeGrace = 5 * time.Second
	}
	if c.TraceCapacity <= 0 {
		c.TraceCapacity = 512
	}
	if c.TraceMaxBytes <= 0 {
		c.TraceMaxBytes = 8 << 20
	}
	if c.HistoryCapacity <= 0 {
		c.HistoryCapacity = 4096
	}
	if c.HistoryMaxBytes <= 0 {
		c.HistoryMaxBytes = 8 << 20
	}
	return c
}

// ErrQueueFull is returned by Submit when the job queue is at capacity;
// HTTP maps it to 503 so clients can back off and retry.
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("service: shutting down")

// ErrUnknownGraph is returned by Submit for graph IDs the store has never
// ingested; HTTP maps it to 404.
var ErrUnknownGraph = errors.New("service: unknown graph")

// Algorithms lists the job algorithm names in the registry's stable
// registration order.
var Algorithms = algo.Names()

// AlgorithmInfo is one GET /algorithms entry: the registry metadata a
// client needs to discover the job surface instead of guessing it.
type AlgorithmInfo struct {
	Name string `json:"name"`
	// Summary is a one-line human description.
	Summary string `json:"summary"`
	// Required lists the request fields a valid job must set, in JSON
	// spelling; alternatives are joined with "|".
	Required []string `json:"required,omitempty"`
	// Capabilities are the descriptor's flags (seed/palette/alphaStar
	// usage, incremental support, output shape).
	Capabilities algo.Capabilities `json:"capabilities"`
}

// AlgorithmInfos returns the registry metadata served by GET /algorithms.
func AlgorithmInfos() []AlgorithmInfo {
	ds := algo.All()
	out := make([]AlgorithmInfo, len(ds))
	for i, d := range ds {
		out[i] = AlgorithmInfo{
			Name:         d.Name,
			Summary:      d.Summary,
			Required:     d.Required,
			Capabilities: d.Caps,
		}
	}
	return out
}

// Service is the serving subsystem. Create with Open (or New when
// persistence is off), stop with Close.
type Service struct {
	cfg   Config
	store *Store
	cache *resultCache

	// persistLog is the durability tier (nil when Config.DataDir is
	// empty); recovery describes what Open reconstructed from it.
	persistLog *persist.Log
	recovery   RecoveryInfo
	logger     *slog.Logger

	metrics      *telemetry.Registry
	jobDurations *telemetry.HistogramVec
	phaseSelf    *telemetry.HistogramVec
	// statSnap is the Stats snapshot the /metrics collectors read; the
	// registry's Prepare hook refreshes it once per scrape so a single
	// exposition is internally consistent.
	statSnap atomic.Pointer[Stats]

	// traces retains finished jobs' span timelines (GET /jobs/{id}/trace);
	// history retains terminal job records (GET /jobs/history). Both are
	// bounded rings independent of job retention.
	traces  *trace.Ring
	history *jobHistory

	baseCtx  context.Context
	stop     context.CancelFunc
	queue    chan *Job
	wg       sync.WaitGroup
	snapStop chan struct{} // stops the periodic snapshot loop
	snapDone chan struct{} // closed when the loop has exited

	mu            sync.Mutex
	closed        bool
	nextID        int64
	jobs          map[string]*Job
	inflight      map[string]*Job // CacheKey -> running/queued leader job
	followers     int             // live follower jobs, capped at QueueDepth
	finished      []finishedRec   // finish order, for retention pruning
	retainedBytes int64
	dedups        int64

	// anytimeJobs counts accepted anytime-mode submissions;
	// anytimePartials counts deadline-interrupted jobs that served a
	// checkpoint. Atomics: partials are bumped on worker goroutines.
	anytimeJobs     atomic.Int64
	anytimePartials atomic.Int64

	// execHook replaces algorithm execution in tests (e.g. to block until
	// cancellation); nil in production.
	execHook func(ctx context.Context, g *graph.Graph, spec JobSpec) (*JobResult, error)

	// cluster joins this node to a fleet (AttachCluster); nil in
	// single-node mode, which keeps every request path exactly as
	// before. draining flips /readyz (and the peer ping) to 503 ahead
	// of shutdown; peerCtr tracks the peer protocol's activity.
	cluster  *cluster.Cluster
	draining atomic.Bool
	peerCtr  peerCounters
}

// New starts a Service with cfg's worker pool running. It panics if cfg
// enables persistence and recovery fails; use Open to handle that error
// (New predates the durability tier and is kept for the pure in-memory
// configuration, where no error is possible).
func New(cfg Config) *Service {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open starts a Service. When cfg.DataDir is set it first recovers the
// graph store, version lineage and result cache from disk (see
// Recovery for what was found) and turns on write-through durability
// for everything ingested or computed afterwards.
func Open(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:      cfg,
		store:    NewStore(cfg.GraphCapacity, cfg.MaxStoreBytes),
		cache:    newResultCache(cfg.ResultCapacity, cfg.ResultCacheBytes),
		logger:   cfg.Logger,
		baseCtx:  ctx,
		stop:     cancel,
		queue:    make(chan *Job, cfg.QueueDepth),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		history:  newJobHistory(cfg.HistoryCapacity, cfg.HistoryMaxBytes),
	}
	if !cfg.DisableTracing {
		s.traces = trace.NewRing(cfg.TraceCapacity, cfg.TraceMaxBytes)
	}
	if cfg.DataDir != "" {
		if err := s.openPersistence(); err != nil {
			cancel()
			return nil, err
		}
	}
	s.initMetrics()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.persistLog != nil && cfg.SnapshotInterval > 0 {
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop(cfg.SnapshotInterval)
	}
	return s, nil
}

// RecoveryInfo describes what Open reconstructed from Config.DataDir.
type RecoveryInfo struct {
	// Enabled reports that the durability tier is on at all.
	Enabled bool `json:"enabled"`
	// GraphsRecovered counts graphs re-ingested from disk; LineageLinks
	// counts how many of them carry a parent version link.
	GraphsRecovered int `json:"graphsRecovered"`
	LineageLinks    int `json:"lineageLinks"`
	// ResultsWarmed counts cached results restored into the result cache.
	ResultsWarmed int `json:"resultsWarmed"`
	// WALRecords counts intact WAL records replayed; WALTruncated reports
	// that a damaged record was cut from the WAL along with everything
	// after it, and WALBytesDiscarded is how many bytes that dropped.
	WALRecords        int   `json:"walRecords"`
	WALTruncated      bool  `json:"walTruncated"`
	WALBytesDiscarded int64 `json:"walBytesDiscarded,omitempty"`
	// WALCorruptMidLog distinguishes the damage: false means a torn tail
	// (the only artifact a crash mid-append leaves), true means intact
	// records existed past the damage point — mid-log corruption whose
	// discarded records were real acknowledged data.
	WALCorruptMidLog bool `json:"walCorruptMidLog,omitempty"`
	// SnapshotAt is the recovered snapshot's save time (zero if none).
	SnapshotAt time.Time `json:"snapshotAt,omitempty"`
	// MissingGraphs counts records whose data file was gone (retention
	// sweeps); Corrupt counts records whose bytes failed content-address
	// verification or re-parsing and were dropped.
	MissingGraphs int `json:"missingGraphs"`
	Corrupt       int `json:"corrupt"`
}

// Recovery returns what Open reconstructed from disk; the zero value
// (Enabled false) means persistence is off.
func (s *Service) Recovery() RecoveryInfo { return s.recovery }

// openPersistence opens cfg.DataDir, replays its state into the store
// and result cache, and attaches write-through persistence. Every
// recovered graph is re-verified against its content address before it
// is served again.
func (s *Service) openPersistence() error {
	log, err := persist.Open(s.cfg.DataDir)
	if err != nil {
		return err
	}
	rec, err := log.Recover()
	if err != nil {
		log.Close()
		return err
	}
	info := RecoveryInfo{
		Enabled:           true,
		WALRecords:        rec.WALRecords,
		WALTruncated:      rec.WALTruncated,
		WALBytesDiscarded: rec.WALBytesDiscarded,
		WALCorruptMidLog:  rec.WALCorruptMidLog,
		SnapshotAt:        rec.SnapshotAt,
		MissingGraphs:     rec.MissingGraphs,
	}
	if rec.WALCorruptMidLog && s.logger != nil {
		// A torn tail is the expected crash artifact; intact records past
		// the damage mean the discarded suffix was real acked data.
		s.logger.Error("WAL corrupt mid-log: acknowledged records were discarded",
			"discardedBytes", rec.WALBytesDiscarded)
	}
	var recoveredIDs []string
	for _, g := range rec.Graphs {
		if hashID(graph.Format(g.Format), g.Data) != g.ID {
			info.Corrupt++
			continue
		}
		var mut *Mutation
		if len(g.Mutation) > 0 {
			mut = new(Mutation)
			if err := json.Unmarshal(g.Mutation, mut); err != nil {
				mut = nil
			}
		}
		// Re-ingest through the normal path (pre-attach, so nothing is
		// re-persisted): the graph is re-parsed, warmed, and the upload
		// budget is enforced in original ingest order.
		added, err := s.store.add(g.Data, graph.Format(g.Format), "", g.Parent, mut)
		if err != nil {
			info.Corrupt++
			continue
		}
		info.GraphsRecovered++
		recoveredIDs = append(recoveredIDs, added.ID)
		if added.Parent != "" {
			info.LineageLinks++
		}
	}
	for _, r := range rec.Results {
		gid, _, ok := strings.Cut(r.Key, "|")
		if !ok {
			continue
		}
		if _, known := s.store.Info(gid); !known {
			continue // its graph aged out; a dangling result would never hit
		}
		res := new(JobResult)
		if err := json.Unmarshal(r.Value, res); err != nil {
			continue
		}
		s.cache.put(r.Key, res)
		info.ResultsWarmed++
	}
	s.store.attachPersist(log)
	// Recovered graphs are durable by construction (their bytes and
	// records are what recovery just read); mark them so an identical
	// re-upload skips the write-through.
	s.store.markPersisted(recoveredIDs)
	s.persistLog = log
	s.recovery = info
	return nil
}

// snapshotLoop checkpoints the durability tier every interval until
// Close stops it.
func (s *Service) snapshotLoop(interval time.Duration) {
	defer close(s.snapDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.SnapshotNow(); err != nil && s.logger != nil {
				s.logger.Error("snapshot failed", "err", err)
			}
		case <-s.snapStop:
			return
		}
	}
}

// SnapshotNow checkpoints the durability tier immediately. The whole
// sequence — capturing the store's graph metadata and the result cache,
// writing them as a durable snapshot, truncating the WAL, and sweeping
// graph files that are no longer referenced, too old
// (Config.RetentionAge), or beyond the disk byte budget
// (Config.MaxDiskBytes) — runs under persist.Log's append barrier, so a
// graph or result acked concurrently lands in either the snapshot or
// the fresh WAL, never in neither. Entries whose files the sweep
// removed are marked non-durable so an identical re-upload persists
// them again. It errors when persistence is not enabled.
func (s *Service) SnapshotNow() error {
	if s.persistLog == nil {
		return errors.New("service: persistence not enabled")
	}
	maxBytes := s.cfg.MaxDiskBytes
	switch {
	case maxBytes == 0:
		maxBytes = s.cfg.MaxStoreBytes
		if maxBytes <= 0 {
			maxBytes = DefaultMaxSourceBytes
		}
	case maxBytes < 0:
		maxBytes = 0 // persist treats 0 as "no byte bound"
	}
	_, err := s.persistLog.Checkpoint(func() ([]persist.GraphMeta, []persist.ResultRecord) {
		return s.store.exportPersist(), s.cache.export()
	}, s.cfg.RetentionAge, maxBytes, s.store.markUnpersisted)
	return err
}

// Store exposes the graph store for ingestion.
func (s *Service) Store() *Store { return s.store }

// ErrIngestForbidden is returned by ResolveIngestPath for paths outside
// the configured ingest directory (or when none is configured); HTTP
// maps it to 403.
var ErrIngestForbidden = errors.New("service: server-side file ingestion not permitted")

// ResolveIngestPath validates a client-supplied server-side path:
// ingestion must be enabled (Config.IngestDir) and the path, interpreted
// relative to that directory, must not escape it. It returns the
// absolute path to read. Symlinks inside the ingest directory are the
// operator's responsibility — the directory's contents are trusted, the
// client's path string is not.
func (s *Service) ResolveIngestPath(p string) (string, error) {
	if s.cfg.IngestDir == "" {
		return "", fmt.Errorf("%w: no ingest directory configured", ErrIngestForbidden)
	}
	base, err := filepath.Abs(s.cfg.IngestDir)
	if err != nil {
		return "", err
	}
	abs := filepath.Clean(filepath.Join(base, p))
	rel, err := filepath.Rel(base, abs)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("%w: %q escapes the ingest directory", ErrIngestForbidden, p)
	}
	return abs, nil
}

// Submit validates spec, consults the result cache, and either returns a
// job that is already done (cache hit — no recomputation, no queue slot)
// or enqueues the work. It fails fast on unknown graphs and algorithms
// and returns ErrQueueFull when the queue is at capacity. In cluster
// mode an unknown graph is first looked for on peers (read-through
// graph fill), and eligible jobs may be answered from or computed on
// their ring owner at execution time.
func (s *Service) Submit(spec JobSpec) (*Job, error) {
	return s.submit(spec, false)
}

// SubmitLocal is Submit for peer-forwarded jobs: the job is pinned to
// this node — it never consults peer caches or forwards again, so a
// forwarded job takes exactly one hop before being computed.
func (s *Service) SubmitLocal(spec JobSpec) (*Job, error) {
	return s.submit(spec, true)
}

func (s *Service) submit(spec JobSpec, localOnly bool) (*Job, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if _, ok := s.store.Info(spec.GraphID); !ok {
		if !s.ensureGraph(spec.GraphID) {
			return nil, fmt.Errorf("%w %q", ErrUnknownGraph, spec.GraphID)
		}
	}

	now := time.Now()
	timeout := s.cfg.DefaultTimeout
	if spec.TimeoutMillis > 0 {
		timeout = time.Duration(spec.TimeoutMillis) * time.Millisecond
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, timeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	j := &Job{
		spec:      spec,
		state:     JobQueued,
		created:   now,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		hub:       newEventHub(),
		localOnly: localOnly,
	}
	j.hub.publish(JobEvent{Type: "state", State: JobQueued})

	// The cache is consulted under the complete-result key even for
	// anytime jobs: a complete result always satisfies an anytime request,
	// while cached partials (keyed with their quality bound) are never
	// served in place of a fresh run.
	if res, ok := s.cache.get(spec.CacheKey()); ok {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			cancel()
			return nil, ErrClosed
		}
		s.register(j)
		s.mu.Unlock()
		j.finish(now, JobDone, res, "", true)
		s.pruneFinished(j)
		return j, nil
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return nil, ErrClosed
	}
	// In-flight deduplication: an identical computation already queued or
	// running makes this job a follower — it gets its own ID, deadline
	// and cancel, consumes no queue slot, and completes from the leader's
	// outcome instead of recomputing. Followers are still backpressured:
	// each costs a Job plus two goroutines, so without a cap a client
	// hammering one slow computation could pile them up without ever
	// seeing a 503. Anytime and non-anytime jobs dedup separately
	// (inflightKey), since their deadline outcomes differ.
	key := spec.inflightKey()
	if leader, ok := s.inflight[key]; ok && !leader.State().terminal() {
		if s.followers >= s.cfg.QueueDepth {
			s.mu.Unlock()
			cancel()
			return nil, ErrQueueFull
		}
		j.follower = true
		s.followers++
		s.register(j)
		s.dedups++
		s.mu.Unlock()
		s.watch(j)
		go s.follow(j, leader)
		return j, nil
	}
	// Register before enqueueing: a worker may pop the job the instant it
	// lands in the channel, and must find its ID already assigned.
	s.register(j)
	s.inflight[key] = j
	select {
	case s.queue <- j:
		s.mu.Unlock()
		s.watch(j)
		return j, nil
	default:
		delete(s.jobs, j.id)
		if s.inflight[key] == j {
			delete(s.inflight, key)
		}
		s.mu.Unlock()
		cancel()
		return nil, ErrQueueFull
	}
}

// follow completes a deduplicated follower job from its leader's
// outcome: a successful leader result is shared (flagged cached), a
// failure is deterministic and shared too, and a canceled leader cancels
// the follower rather than silently re-running the work. The follower's
// own cancellation or deadline wins if it fires first.
func (s *Service) follow(j, leader *Job) {
	select {
	case <-leader.Done():
	case <-j.done:
		return // follower canceled/expired first; its watcher handled it
	}
	snap := leader.Snapshot()
	var finished bool
	switch snap.State {
	case JobDone:
		finished = j.finish(time.Now(), JobDone, snap.Result, "", true)
	case JobFailed:
		finished = j.finish(time.Now(), JobFailed, nil, snap.Error, true)
	default: // canceled
		finished = j.finish(time.Now(), JobCanceled, nil,
			"deduplicated onto job "+leader.ID()+", which was canceled", false)
	}
	if finished {
		s.pruneFinished(j)
	}
}

// watch moves a job to JobCanceled as soon as its context expires — even
// while it still sits in the queue, so deadlines are reflected promptly
// rather than at the next worker pop. The goroutine exits when the job
// reaches a terminal state by any path.
//
// A running anytime leader is exempt: its deadline belongs to runJob,
// which waits (up to Config.AnytimeGrace) for the algorithm's best
// checkpoint and completes the job with a partial result. Anytime jobs
// still waiting in the queue have no checkpoint to serve and are
// canceled like any other; so are anytime followers, whose leader owns
// the computation.
func (s *Service) watch(j *Job) {
	go func() {
		select {
		case <-j.ctx.Done():
			if j.spec.Anytime && !j.follower {
				if j.cancelIfQueued(time.Now(), j.ctx.Err().Error()) {
					s.pruneFinished(j)
				}
				return
			}
			if j.finish(time.Now(), JobCanceled, nil, j.ctx.Err().Error(), false) {
				s.pruneFinished(j)
			}
		case <-j.done:
		}
	}()
}

// register assigns an ID and indexes the job; the caller holds s.mu.
// The span recorder is created here — the ID it carries is the trace
// ring's key, and registration is the first moment the ID exists.
func (s *Service) register(j *Job) {
	s.nextID++
	j.id = "j-" + strconv.FormatInt(s.nextID, 10)
	if s.traces != nil {
		j.rec = trace.NewRecorder(j.id, j.created, s.cfg.TraceRoundEvery)
	}
	if j.spec.Anytime {
		s.anytimeJobs.Add(1)
	}
	s.jobs[j.id] = j
}

// Get returns the job with the given ID, if it is still retained.
func (s *Service) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Wait blocks until the job reaches a terminal state or ctx expires, and
// returns its then-current snapshot.
func (s *Service) Wait(ctx context.Context, j *Job) JobSnapshot {
	select {
	case <-j.Done():
	case <-ctx.Done():
	}
	return j.Snapshot()
}

// Cancel cancels the job with the given ID; it reports false if the job
// is unknown or already terminal.
func (s *Service) Cancel(id string) bool {
	j, ok := s.Get(id)
	if !ok {
		return false
	}
	if !j.Cancel("canceled by client") {
		return false
	}
	s.pruneFinished(j)
	return true
}

// Jobs returns snapshots of every retained job, oldest first.
func (s *Service) Jobs() []JobSnapshot {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].created.Before(jobs[k].created) })
	out := make([]JobSnapshot, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	return out
}

// worker drains the queue until Close closes it.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job. The job's context is threaded down into the
// algorithm, so a cancellation or deadline interrupts the decomposition
// mid-phase (the engine checks it every simulated round). The algorithm
// still runs in its own goroutine so the worker is released immediately
// even for the few centralized reference computations that are not
// preemptible; an abandoned computation of that kind finishes in the
// background and its result is discarded.
func (s *Service) runJob(j *Job) {
	if err := j.ctx.Err(); err != nil {
		if j.finish(time.Now(), JobCanceled, nil, err.Error(), false) {
			s.pruneFinished(j)
		}
		return
	}
	started := time.Now()
	if !j.tryStart(started) {
		return // canceled while queued; whoever finished it pruned it
	}
	type outcome struct {
		res *JobResult
		err error
	}
	ch := make(chan outcome, 1)
	// The job's event hub rides down into the algorithm as the cost
	// account's progress hook, so SSE subscribers see phases and rounds
	// as they are charged; the span recorder rides alongside it and turns
	// the same charge stream into phase spans.
	execCtx := dist.WithProgress(j.ctx, j.hub.progress)
	if j.rec != nil {
		j.rec.BeginExecution(started)
		execCtx = dist.WithSpans(execCtx, j.rec)
	}
	go func() {
		defer func() {
			// A panicking algorithm must fail its job, not kill the daemon.
			if r := recover(); r != nil {
				ch <- outcome{nil, fmt.Errorf("service: algorithm panicked: %v", r)}
			}
		}()
		res, err := s.execute(execCtx, j)
		ch <- outcome{res, err}
	}()
	finished := false
	handle := func(out outcome) {
		switch {
		case out.err != nil && (errors.Is(out.err, context.Canceled) || errors.Is(out.err, context.DeadlineExceeded)):
			// The algorithm observed the job context and aborted mid-phase:
			// that is a cancellation, not an algorithm failure.
			finished = j.finish(time.Now(), JobCanceled, nil, out.err.Error(), false)
		case out.err != nil:
			finished = j.finish(time.Now(), JobFailed, nil, out.err.Error(), false)
		case out.res.Anytime != nil && out.res.Anytime.Partial:
			// A deadline-interrupted anytime run served its best
			// checkpoint: cache it under the quality-qualified key — never
			// the complete key, where it would mask a full-quality result.
			key := j.spec.partialCacheKey(out.res.Anytime.ColorsUsed)
			s.anytimePartials.Add(1)
			s.cache.put(key, out.res)
			s.persistResult(key, out.res)
			s.observeJobDuration(j.spec.Algorithm, time.Since(started))
			finished = j.finish(time.Now(), JobDone, out.res, "", false)
		default:
			s.cache.put(j.spec.CacheKey(), out.res)
			s.persistResult(j.spec.CacheKey(), out.res)
			s.observeJobDuration(j.spec.Algorithm, time.Since(started))
			finished = j.finish(time.Now(), JobDone, out.res, "", false)
		}
	}
	select {
	case out := <-ch:
		handle(out)
	case <-j.ctx.Done():
		if j.spec.Anytime {
			// The deadline fired mid-run: give the algorithm a short grace
			// to abort at its next context check and surface the best
			// checkpoint as a partial result. The watch goroutine leaves
			// running anytime jobs to this path.
			grace := time.NewTimer(s.cfg.AnytimeGrace)
			select {
			case out := <-ch:
				grace.Stop()
				handle(out)
			case <-grace.C:
				finished = j.finish(time.Now(), JobCanceled, nil,
					j.ctx.Err().Error()+" (no anytime checkpoint within grace)", false)
			}
		} else {
			finished = j.finish(time.Now(), JobCanceled, nil, j.ctx.Err().Error(), false)
		}
	}
	if finished {
		s.pruneFinished(j)
	}
}

// persistResult writes a computed result through to the durability tier
// so a restarted server serves it from cache. A persist failure degrades
// durability, not the job: the result is valid and already cached, so it
// is logged (and counted in persist.Stats.Errors) rather than failing a
// finished computation.
func (s *Service) persistResult(key string, res *JobResult) {
	if s.persistLog == nil {
		return
	}
	raw, err := json.Marshal(res)
	if err == nil {
		err = s.persistLog.AppendResult(key, raw)
	}
	if err != nil && s.logger != nil {
		s.logger.Error("persist result failed", "key", key, "err", err)
	}
}

// observeJobDuration records a completed computation in the per-algorithm
// latency histogram (cache hits and followers never reach it).
func (s *Service) observeJobDuration(algorithm string, d time.Duration) {
	if s.jobDurations != nil {
		s.jobDurations.Observe(algorithm, d.Seconds())
	}
}

// finishedRec tracks one retained finished job for retention accounting.
type finishedRec struct {
	id    string
	bytes int64
}

// pruneFinished records that j reached a terminal state: it releases j's
// in-flight dedup slot and forgets the oldest finished jobs beyond the
// retention budgets (cfg.RetainJobs entries; result bytes bounded by the
// result-cache byte budget, since retained results pin memory exactly
// like cache entries do). Queued and running jobs are never pruned.
// Exactly one caller runs this per job — the finish() winner.
func (s *Service) pruneFinished(j *Job) {
	snap := j.Snapshot()
	if s.logger != nil {
		attrs := []any{
			"id", snap.ID,
			"algorithm", snap.Spec.Algorithm,
			"graph", snap.Spec.GraphID,
			"state", string(snap.State),
			"cached", snap.Cached,
		}
		if snap.FinishedAt != nil {
			attrs = append(attrs, "durationMs",
				float64(snap.FinishedAt.Sub(snap.CreatedAt).Microseconds())/1000)
		}
		if snap.Error != "" {
			attrs = append(attrs, "err", snap.Error)
		}
		s.logger.Info("job finished", attrs...)
	}
	s.finalizeObservability(snap, j.rec)
	// Cache hits and dedup followers share one *JobResult with the cache
	// entry (and with each other), so only an actually-computed result
	// counts its full size toward retention; shared references pin ~0
	// extra memory and charging them fully would evict other clients'
	// pollable jobs for no real gain.
	bytes := int64(256)
	if !snap.Cached {
		bytes = approxResultBytes(snap.Result)
	}
	maxBytes := s.cfg.ResultCacheBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxCacheBytes
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[j.spec.inflightKey()] == j {
		delete(s.inflight, j.spec.inflightKey())
	}
	if j.follower {
		s.followers--
	}
	s.finished = append(s.finished, finishedRec{id: j.id, bytes: bytes})
	s.retainedBytes += bytes
	for len(s.finished) > 1 &&
		(len(s.finished) > s.cfg.RetainJobs || s.retainedBytes > maxBytes) {
		oldest := s.finished[0]
		s.finished = s.finished[1:]
		s.retainedBytes -= oldest.bytes
		delete(s.jobs, oldest.id)
	}
}

// resultPhases extracts the round count and per-phase cost breakdown
// from whichever result shape the algorithm produced.
func resultPhases(res *JobResult) (int, []dist.Phase) {
	switch {
	case res == nil:
		return 0, nil
	case res.Decomposition != nil:
		return res.Decomposition.Rounds, res.Decomposition.Phases
	case res.Orientation != nil:
		return res.Orientation.Rounds, res.Orientation.Phases
	default:
		return res.Rounds, res.Phases
	}
}

func millis(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// finalizeObservability closes out a terminal job's observability state:
// it attaches the queue and run spans, finalizes the trace against the
// result's authoritative cost breakdown, moves the trace into the ring,
// feeds the per-phase self-time histogram, and appends the job-history
// record. pruneFinished — run exactly once per terminal job — is the
// only caller, so traces land in the ring exactly once. Cost breakdowns
// are recorded only for jobs that actually computed (cache hits,
// followers, failures and cancellations carry none), keeping the ring's
// cumulative phase totals a faithful count of work performed.
func (s *Service) finalizeObservability(snap JobSnapshot, rec *trace.Recorder) {
	finished := snap.CreatedAt
	if snap.FinishedAt != nil {
		finished = *snap.FinishedAt
	}
	hr := JobRecord{
		ID:         snap.ID,
		GraphID:    snap.Spec.GraphID,
		Algorithm:  snap.Spec.Algorithm,
		Mode:       snap.Spec.effectiveMode(),
		State:      snap.State,
		Cached:     snap.Cached,
		Error:      snap.Error,
		CreatedAt:  snap.CreatedAt,
		FinishedAt: finished,
		HasTrace:   rec != nil,
	}
	queueEnd := finished
	if snap.StartedAt != nil {
		queueEnd = *snap.StartedAt
		hr.RunMillis = millis(finished.Sub(*snap.StartedAt))
	}
	hr.QueueMillis = millis(queueEnd.Sub(snap.CreatedAt))
	var phases []dist.Phase
	if snap.State == JobDone && !snap.Cached {
		hr.Rounds, phases = resultPhases(snap.Result)
		hr.Phases = phases
		for _, p := range phases {
			hr.Messages += p.Messages
			hr.Bits += p.Bits
		}
	}
	if rec != nil {
		rec.AddSpan("queue", "job", snap.CreatedAt, queueEnd, nil)
		if snap.StartedAt != nil {
			rec.AddSpan("run "+snap.Spec.Algorithm, "job", *snap.StartedAt, finished,
				map[string]any{"state": string(snap.State), "cached": snap.Cached})
		}
		cps := make([]trace.CostPhase, len(phases))
		for i, p := range phases {
			cps[i] = trace.CostPhase{Name: p.Name, Rounds: p.Rounds, Messages: p.Messages, Bits: p.Bits}
		}
		rec.Finish(finished, cps)
		s.traces.Put(rec)
		if s.phaseSelf != nil {
			for _, p := range rec.Phases() {
				s.phaseSelf.Observe(p.Name, p.Self.Seconds())
			}
		}
	}
	s.history.add(hr)
}

// Trace returns the retained trace for a job ID (false when tracing is
// disabled, the job is unknown, or the trace was evicted).
func (s *Service) Trace(id string) (*trace.Recorder, bool) {
	return s.traces.Get(id)
}

// History returns terminal job records matching the filter, newest
// first.
func (s *Service) History(state JobState, algorithm string, limit int) []JobRecord {
	return s.history.list(historyFilter{state: state, algo: algorithm, limit: limit})
}

// execute fetches the graph and dispatches to the requested entry point,
// verifying decompositions before returning them. hub (may be nil in
// direct calls) receives incremental repair summaries; phase/round
// progress arrives through the dist.Progress hook already on ctx.
func (s *Service) execute(ctx context.Context, j *Job) (*JobResult, error) {
	spec, hub := j.spec, j.hub
	g, err := s.store.Get(spec.GraphID)
	if err != nil {
		return nil, err
	}
	if s.execHook != nil {
		return s.execHook(ctx, g, spec)
	}
	if s.cluster != nil && !j.localOnly && spec.peerEligible() {
		// Cluster path: answer from the routing target's cache or compute
		// there; handled=false degrades to the local compute below (a
		// bit-identical result by the golden cache-key contract). A
		// fallback compute of a graph routed elsewhere is offered back to
		// the target so the fleet converges to "hit everywhere".
		if res, err, handled := s.peerExecute(ctx, j); handled {
			return res, err
		}
		res, err := runSpec(ctx, g, spec)
		if err == nil {
			s.pushResultToTarget(spec, res)
		}
		return res, err
	}
	if spec.effectiveMode() == ModeIncremental {
		if res, ok := s.tryIncremental(ctx, g, spec, hub); ok {
			return res, nil
		}
		// No lineage or no warm start: incremental degrades to a full
		// run rather than failing the job.
	}
	return runSpec(ctx, g, spec)
}

// tryIncremental serves a mode=incremental decompose job by repair
// instead of recomputation: it looks up the mutation batch that derived
// spec.GraphID, takes the parent version's cached decomposition (full
// result preferred, its own incremental result otherwise) as the warm
// start, and replays the batch through a dynamic.Maintainer. The repaired
// coloring is re-verified against this version's own stored graph before
// it is returned, exactly like a cold result. It reports false whenever
// any ingredient is missing, in which case the caller falls back to a
// full run.
func (s *Service) tryIncremental(ctx context.Context, g *graph.Graph, spec JobSpec, hub *eventHub) (*JobResult, bool) {
	parentID, mut, ok := s.store.MutationOf(spec.GraphID)
	if !ok {
		return nil, false
	}
	pSpec := spec
	pSpec.GraphID = parentID
	pSpec.Mode = ""
	warm, ok := s.cache.peek(pSpec.CacheKey())
	if !ok {
		pSpec.Mode = ModeIncremental
		warm, ok = s.cache.peek(pSpec.CacheKey())
	}
	if !ok || warm.Decomposition == nil {
		return nil, false
	}
	parent, err := s.store.Get(parentID)
	if err != nil || len(warm.Decomposition.Colors) != parent.M() {
		return nil, false
	}
	m, err := dynamic.NewMaintainer(parent, warm.Decomposition.Colors, warm.Decomposition.NumForests, dynamic.Config{
		Alpha: spec.Options.Alpha,
		Eps:   spec.Options.Eps,
		Seed:  spec.Options.Seed,
	})
	if err != nil {
		return nil, false
	}
	// Repair rounds are charged to the maintainer's own cost account;
	// forward them to the same progress and span hooks a full run would
	// use.
	m.Cost().SetProgress(dist.ProgressFromContext(ctx))
	m.Cost().SetSpans(dist.SpansFromContext(ctx))
	for _, id := range mut.Delete {
		if err := m.DeleteEdge(id); err != nil {
			return nil, false
		}
	}
	for _, e := range mut.Insert {
		if _, err := m.InsertEdge(e[0], e[1]); err != nil {
			return nil, false
		}
	}
	repaired, colors, k, err := m.Result()
	if err != nil || repaired.M() != g.M() {
		return nil, false
	}
	// The maintainer's compaction order matches Mutate's, so the colors
	// line up with this version's edge IDs; verify against the store's
	// graph (the source of truth), not the maintainer's copy.
	if err := nwforest.Verify(g, colors, k); err != nil {
		return nil, false
	}
	stats := m.Stats()
	hub.publish(JobEvent{Type: "repair", Repair: &stats})
	cost := m.Cost()
	return &JobResult{Decomposition: &nwforest.Decomposition{
		Colors:     colors,
		NumForests: k,
		Diameter:   nwforest.Diameter(g, colors),
		Rounds:     cost.Rounds(),
		Phases:     cost.Breakdown(),
	}}, true
}

// RunSpec runs the algorithm a spec names directly on a graph through
// the registry. It is the dispatch point shared by tests that want the
// cold-path result without a service; the worker pool uses the
// context-aware runSpec so cancellation interrupts the algorithm
// mid-phase.
func RunSpec(g *graph.Graph, spec JobSpec) (*JobResult, error) {
	return runSpec(context.Background(), g, spec)
}

// runSpec dispatches one job through the algorithm registry. Validation,
// normalization, defaulting and result verification are owned by the
// descriptors (internal/algo); the service contributes only its own
// concerns — graph resolution, mode handling, caching — around this
// call.
func runSpec(ctx context.Context, g *graph.Graph, spec JobSpec) (*JobResult, error) {
	return algo.Run(ctx, g, spec.request())
}

// validate rejects parameter combinations the algorithms would reject
// obscurely — or panic on — only after a worker picks the job up, so
// clients get a 400 at submit time instead. Per-algorithm rules live in
// the registry descriptors; only the service-level Mode field is
// checked here.
func (sp JobSpec) validate() error {
	if err := algo.ValidateRequest(sp.request()); err != nil {
		return err
	}
	switch sp.Mode {
	case "", "full":
	case ModeIncremental:
		if d, ok := algo.Lookup(sp.Algorithm); !ok || !d.Caps.Incremental {
			return fmt.Errorf("service: mode %q is not supported for algorithm %q", ModeIncremental, sp.Algorithm)
		}
		if sp.Anytime {
			// Incremental repair is not phase-checkpointed; the combination
			// would silently degrade to all-or-nothing.
			return fmt.Errorf("service: anytime is not supported with mode %q", ModeIncremental)
		}
	default:
		return fmt.Errorf("service: unknown mode %q (want \"\", \"full\" or %q)", sp.Mode, ModeIncremental)
	}
	return nil
}

// Stats is the /stats payload. It is also the single source of truth
// behind /metrics: every counter and gauge collector there reads from a
// Stats snapshot refreshed once per scrape, so the two endpoints can
// never drift — any number visible in one is derived from the same
// struct the other serializes.
type Stats struct {
	Workers    int            `json:"workers"`
	QueueDepth int            `json:"queueDepth"`
	QueueCap   int            `json:"queueCap"`
	Jobs       map[string]int `json:"jobs"`
	// Dedups counts submissions that attached to an identical in-flight
	// job instead of recomputing.
	Dedups int64 `json:"dedups"`
	// Anytime counts anytime-mode submissions and the partial
	// (deadline-interrupted) checkpoint results served for them.
	Anytime AnytimeStats `json:"anytime"`
	// RetainedResultBytes is the approximate memory pinned by finished
	// jobs still pollable.
	RetainedResultBytes int64      `json:"retainedResultBytes"`
	Store               StoreStats `json:"store"`
	Results             CacheStats `json:"results"`
	// Trace and History describe the observability rings behind
	// GET /jobs/{id}/trace and GET /jobs/history. Trace is all-zero when
	// tracing is disabled.
	Trace   trace.RingStats `json:"trace"`
	History HistoryStats    `json:"history"`
	// Persist reports the durability tier's counters and Recovery what
	// Open reconstructed from disk; both are nil when persistence is off.
	Persist  *persist.Stats `json:"persist,omitempty"`
	Recovery *RecoveryInfo  `json:"recovery,omitempty"`
	// Node identifies this node in the fleet and Peer counts the peer
	// protocol's activity; both are nil in single-node mode, keeping the
	// document byte-identical to pre-cluster responses.
	Node *cluster.NodeInfo `json:"node,omitempty"`
	Peer *PeerStats        `json:"peer,omitempty"`
}

// AnytimeStats counts the anytime serving path.
type AnytimeStats struct {
	// Jobs is the number of accepted anytime-mode submissions.
	Jobs int64 `json:"jobs"`
	// Partials is the number of deadline-interrupted anytime jobs that
	// completed with a checkpoint (partial) result.
	Partials int64 `json:"partials"`
}

// Stats returns a snapshot of the service's counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	byState := make(map[string]int)
	for _, j := range s.jobs {
		byState[string(j.State())]++
	}
	dedups, retained := s.dedups, s.retainedBytes
	s.mu.Unlock()
	st := Stats{
		Workers:             s.cfg.Workers,
		QueueDepth:          len(s.queue),
		QueueCap:            cap(s.queue),
		Jobs:                byState,
		Dedups:              dedups,
		Anytime:             AnytimeStats{Jobs: s.anytimeJobs.Load(), Partials: s.anytimePartials.Load()},
		RetainedResultBytes: retained,
		Store:               s.store.Stats(),
		Results:             s.cache.stats(),
		Trace:               s.traces.Stats(),
		History:             s.history.stats(),
	}
	if s.persistLog != nil {
		ps := s.persistLog.Stats()
		rec := s.recovery
		st.Persist = &ps
		st.Recovery = &rec
	}
	if s.cluster != nil {
		ni := s.cluster.NodeInfo()
		ps := s.peerStats()
		st.Node = &ni
		st.Peer = &ps
	}
	return st
}

// Close shuts the service down gracefully: new submissions fail with
// ErrClosed, every in-flight job's context is canceled, and Close waits
// (up to ctx's deadline) for the workers to drain.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.stop()       // cancels every job context derived from baseCtx
	close(s.queue) // workers exit once the queue drains
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("service: shutdown timed out: %w", ctx.Err())
	}
	if s.persistLog != nil {
		if s.snapStop != nil {
			close(s.snapStop)
			<-s.snapDone
		}
		// A final checkpoint makes the next start replay nothing; any
		// failure here still leaves the WAL intact for recovery.
		if serr := s.SnapshotNow(); serr != nil && s.logger != nil {
			s.logger.Error("final snapshot failed", "err", serr)
		}
		if cerr := s.persistLog.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
