package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nwforest"
	"nwforest/internal/gen"
	"nwforest/internal/graph"
	"nwforest/internal/verify"
)

// TestAnytimeCacheKeyContract extends the golden-key guarantee to the
// anytime keys: the plain key rendering is byte-identical to what
// earlier releases produced (anytime must not invalidate warm caches),
// the anytime flag itself never changes the complete key, and the
// partial/in-flight qualifiers can never collide with it.
func TestAnytimeCacheKeyContract(t *testing.T) {
	spec := JobSpec{GraphID: "sha256:aa", Algorithm: "decompose",
		Options: nwforest.Options{Alpha: 3, Eps: 0.5, Seed: 1}}
	const golden = "sha256:aa|decompose|alpha=3,eps=0.5,seed=1,diam=false,sampled=false,alphaStar=0,palette=0,mode="
	if got := spec.CacheKey(); got != golden {
		t.Fatalf("plain cache key changed:\n got  %q\n want %q", got, golden)
	}

	anytime := spec
	anytime.Anytime = true
	anytime.TimeoutMillis = 50
	if got := anytime.CacheKey(); got != golden {
		t.Errorf("anytime flag leaked into the complete key:\n got  %q\n want %q", got, golden)
	}

	if got, want := spec.partialCacheKey(7), golden+",anytime-partial=7"; got != want {
		t.Errorf("partial key:\n got  %q\n want %q", got, want)
	}
	if spec.partialCacheKey(7) == spec.partialCacheKey(8) {
		t.Error("partials of different quality share a key")
	}
	if spec.partialCacheKey(7) == spec.CacheKey() {
		t.Error("partial key collides with the complete key")
	}

	if got := spec.inflightKey(); got != golden {
		t.Errorf("non-anytime inflight key %q differs from the cache key", got)
	}
	if got, want := anytime.inflightKey(), golden+",anytime"; got != want {
		t.Errorf("anytime inflight key:\n got  %q\n want %q", got, want)
	}
}

// TestAnytimeHTTPEndToEnd is the full anytime client story over HTTP:
// a deadline that fires mid-run yields a 200 with a verify-clean
// partial decomposition and its quality bound; the identical spec
// without the deadline computes the complete result from scratch (the
// partial never masks it); and once the complete result is cached, an
// anytime request is served straight from the cache.
func TestAnytimeHTTPEndToEnd(t *testing.T) {
	svc, ts := testServer(t, Config{Workers: 2})
	g := gen.ForestUnion(2000, 3, 42)

	var upload bytes.Buffer
	if err := graph.Encode(&upload, g); err != nil {
		t.Fatal(err)
	}
	var info GraphInfo
	if code := doJSON(t, "POST", ts.URL+"/graphs", upload.Bytes(), "", &info); code != http.StatusCreated {
		t.Fatalf("POST /graphs -> %d, want 201", code)
	}

	// Calibrate: time a cold complete run so the anytime deadline lands
	// mid-run on this machine, fast or slow.
	coldSpec := JobSpec{GraphID: info.ID, Algorithm: "decompose",
		Options: nwforest.Options{Alpha: 4, Eps: 0.5, Seed: 1}}
	started := time.Now()
	snap := submitAndWait(t, ts, coldSpec, 120*time.Second)
	coldRun := time.Since(started)
	if snap.State != JobDone || snap.Result.Anytime != nil {
		t.Fatalf("calibration run: state %s anytime %+v", snap.State, snap.Result.Anytime)
	}
	deadline := coldRun / 4
	if deadline < 10*time.Millisecond {
		deadline = 10 * time.Millisecond
	}
	if deadline > 2*time.Second {
		deadline = 2 * time.Second
	}

	// The timed run uses a different seed so the calibration run's
	// cached result cannot satisfy it.
	timedSpec := JobSpec{GraphID: info.ID, Algorithm: "decompose", Anytime: true,
		TimeoutMillis: deadline.Milliseconds(),
		Options:       nwforest.Options{Alpha: 4, Eps: 0.5, Seed: 2}}
	snap = submitAndWait(t, ts, timedSpec, 120*time.Second)
	if snap.State != JobDone {
		t.Fatalf("anytime job with %v deadline: state %s (%s), want done", deadline, snap.State, snap.Error)
	}
	if snap.Result == nil || snap.Result.Anytime == nil || !snap.Result.Anytime.Partial {
		t.Fatalf("anytime job with %v deadline (cold run %v) returned no partial: %+v",
			deadline, coldRun, snap.Result)
	}
	ai := snap.Result.Anytime
	colors := snap.Result.Decomposition.Colors
	k := int(verify.MaxColor(colors)) + 1
	if err := verify.ForestDecomposition(g, colors, k); err != nil {
		t.Fatalf("partial result fails verification: %v", err)
	}
	if used := verify.ColorsUsed(colors); used != ai.ColorsUsed {
		t.Errorf("stated quality bound %d, served coloring uses %d colors", ai.ColorsUsed, used)
	}
	if ai.Target < 1 || ai.Checkpoints < 1 || ai.Phase == "" {
		t.Errorf("implausible partial metadata %+v", ai)
	}

	// Same spec, no deadline: the cached partial must not be served in
	// place of a fresh complete run.
	fullSpec := timedSpec
	fullSpec.TimeoutMillis = 0
	snap = submitAndWait(t, ts, fullSpec, 120*time.Second)
	if snap.State != JobDone || snap.Result.Anytime != nil {
		t.Fatalf("undeadlined rerun: state %s anytime %+v, want a complete result", snap.State, snap.Result.Anytime)
	}
	if snap.Cached {
		t.Fatal("undeadlined rerun was served from cache: a partial masked the complete computation")
	}
	completeForests := snap.Result.Decomposition.NumForests

	// Now the complete result is cached; an anytime request is satisfied
	// by it directly (complete results are interchangeable, which is why
	// Anytime stays out of the cache key).
	again := timedSpec
	again.TimeoutMillis = 60_000
	snap = submitAndWait(t, ts, again, 120*time.Second)
	if !snap.Cached || snap.Result.Anytime != nil {
		t.Fatalf("anytime request after complete run: cached=%v anytime=%+v, want a cache hit", snap.Cached, snap.Result.Anytime)
	}
	if snap.Result.Decomposition.NumForests != completeForests {
		t.Fatalf("cache served %d forests, complete run had %d", snap.Result.Decomposition.NumForests, completeForests)
	}

	// Observability: both counters moved, and /metrics exposes them.
	st := svc.Stats()
	if st.Anytime.Jobs < 2 || st.Anytime.Partials < 1 {
		t.Errorf("stats: anytime jobs %d partials %d, want >=2 and >=1", st.Anytime.Jobs, st.Anytime.Partials)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, metric := range []string{"nwserve_anytime_jobs_total", "nwserve_anytime_partials_total"} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
}

// TestAnytimeRejectsIncremental: the two modes answer "what happens at
// the deadline" incompatibly, so combining them is a client error.
func TestAnytimeRejectsIncremental(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	g := gen.ForestUnion(50, 2, 1)
	var buf bytes.Buffer
	if err := graph.Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	info, err := svc.Store().AddBytes(buf.Bytes(), graph.FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	_, err = svc.Submit(JobSpec{GraphID: info.ID, Algorithm: "decompose", Mode: ModeIncremental, Anytime: true,
		Options: nwforest.Options{Alpha: 3, Eps: 0.5, Seed: 1}})
	if err == nil || !strings.Contains(err.Error(), "anytime") {
		t.Fatalf("anytime+incremental accepted (err=%v)", err)
	}
	// Anytime on an algorithm without the capability is rejected too.
	_, err = svc.Submit(JobSpec{GraphID: info.ID, Algorithm: "arboricity", Anytime: true})
	if err == nil {
		t.Fatal("anytime accepted for an algorithm without the capability")
	}
}

// submitAndWait posts a job and follows it to a terminal state.
func submitAndWait(t *testing.T, ts *httptest.Server, spec JobSpec, patience time.Duration) JobSnapshot {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var snap JobSnapshot
	code := doJSON(t, "POST", ts.URL+"/jobs", body, "application/json", &snap)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("POST /jobs -> %d", code)
	}
	deadline := time.Now().Add(patience)
	for !snap.State.terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", snap.ID, snap.State, patience)
		}
		url := fmt.Sprintf("%s/jobs/%s?wait=2s", ts.URL, snap.ID)
		if code := doJSON(t, "GET", url, nil, "", &snap); code != http.StatusOK {
			t.Fatalf("GET %s -> %d", url, code)
		}
	}
	return snap
}
