// Package rng provides deterministic, splittable pseudo-random number
// generation for the simulator.
//
// In the LOCAL model every vertex flips its own coins. To keep whole-run
// reproducibility while letting per-node computations run concurrently, the
// package exposes a splittable generator: a single seed deterministically
// derives an independent stream per (node, phase) pair. The core generator
// is SplitMix64 (Steele, Lea & Flood, OOPSLA'14), which is tiny, fast, and
// passes BigCrush when used as a stream seeder.
package rng

import "math"

const (
	gamma      = 0x9e3779b97f4a7c15 // golden-ratio increment
	mixMul1    = 0xbf58476d1ce4e5b9
	mixMul2    = 0x94d049bb133111eb
	doubleUnit = 1.0 / (1 << 53)
)

// mix64 is the SplitMix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * mixMul1
	z = (z ^ (z >> 27)) * mixMul2
	return z ^ (z >> 31)
}

// Source is a deterministic SplitMix64 stream. The zero value is a valid
// stream seeded with 0.
type Source struct {
	state uint64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Split derives an independent child stream identified by id. Streams with
// distinct (parent seed, id) pairs are statistically independent.
func (s *Source) Split(id uint64) *Source {
	return &Source{state: mix64(s.state+gamma) ^ mix64(id*gamma+gamma)}
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += gamma
	return mix64(s.state)
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be faster but
	// modulo with a 64-bit source has negligible bias for n << 2^64.
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * doubleUnit
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Exp returns an exponential random variable with rate lambda (mean
// 1/lambda). It panics if lambda <= 0.
func (s *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -math.Log(u) / lambda
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials (support {0, 1, 2, ...}). It panics unless 0 < p <= 1.
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns a uniformly random k-subset of [0, n) in increasing order.
// It panics if k > n or k < 0.
func (s *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	// Floyd's algorithm: O(k) expected time, O(k) space.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := s.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Insertion sort: k is small in all our uses.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
