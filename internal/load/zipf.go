package load

import (
	"math"
	"sort"

	"nwforest/internal/rng"
)

// Zipf draws ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s. Rank 0 is the hottest; s = 0 degenerates to uniform.
// Draws consume exactly one Float64 from the source, so a schedule of
// draws is reproducible from the seed alone.
//
// nwload maps rank 0 to the largest generated graph: the most popular
// graph is also the most expensive one, which keeps the result cache
// honest (hot entries are the ones worth caching) and guarantees the
// anytime deadline actually fires mid-run on the hot path.
type Zipf struct {
	cum []float64 // cumulative probabilities; cum[n-1] == 1
}

// NewZipf precomputes the cumulative distribution for n ranks with
// exponent s >= 0. It panics if n < 1 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		panic("load: Zipf needs n >= 1")
	}
	if s < 0 {
		panic("load: Zipf needs s >= 0")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := range cum {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // exact, independent of rounding
	return &Zipf{cum: cum}
}

// Draw returns the next rank using one uniform draw from src.
func (z *Zipf) Draw(src *rng.Source) int {
	u := src.Float64()
	return sort.SearchFloat64s(z.cum, u)
}
