// Command benchcmp is the CI bench-regression gate. It compares two
// JSON result files and exits non-zero when the new run regresses
// against the baseline. Two formats are understood, sniffed from the
// file itself:
//
//   - nwbench schema-1 files ("BENCH_*.json"): allocation metrics
//     (allocs/op, B/op) are deterministic given the benchmark seed, so
//     they are always gated. Wall time is only gated when both files
//     were produced on the same CPU model — comparing ns/op across
//     different hardware is noise, not signal; the gate reports the
//     skip explicitly so the log shows what was and wasn't checked.
//
//   - nwload reports ("tool": "nwload"): latency quantiles (p50/p99/
//     p999) and goodput are gated per traffic class, under the same
//     same-CPU rule as ns/op. Reports are only comparable when their
//     workload signatures match — identical configs measuring the same
//     thing; otherwise the ratio gates are skipped with an explicit
//     line and only -floors/-ceilings apply.
//
// Besides baseline comparison, -floors imposes absolute minimums and
// -ceilings absolute maximums on the new run's metrics
// ("exp.metric=value", comma-separated) — e.g. -floors
// dynamic.speedup=5 fails the gate if incremental repair ever drops
// below 5x the per-mutation rebuild cost, and -ceilings
// totals.errors=0 fails a load run that saw any error at all,
// regardless of what the baseline recorded.
//
// Usage:
//
//	benchcmp [-threshold 0.10] [-force-ns] [-floors exp.metric=v,...] \
//	    [-ceilings exp.metric=v,...] baseline.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nwforest/internal/load"
)

// Record mirrors nwbench's BenchRecord. nwload classes are converted
// into this shape too (metrics only), so the floor/ceiling machinery
// works identically on both formats.
type Record struct {
	Name     string             `json:"name"`
	NsOp     int64              `json:"ns_op"`
	BOp      int64              `json:"b_op"`
	AllocsOp int64              `json:"allocs_op"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// File mirrors nwbench's BenchFile.
type File struct {
	Schema      int      `json:"schema"`
	Go          string   `json:"go"`
	CPU         string   `json:"cpu"`
	Tier        string   `json:"tier"`
	Scale       int      `json:"scale"`
	Seed        uint64   `json:"seed"`
	Count       int      `json:"count"`
	Experiments []Record `json:"experiments"`
}

// input is one parsed result file: exactly one of bench/load is set.
type input struct {
	bench *File
	load  *load.Report
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "allowed fractional regression before failing")
	nsThreshold := flag.Float64("ns-threshold", -1, "separate threshold for wall-time metrics (ns/op, latency, goodput; -1 = same as -threshold); CI uses a loose one because shared-runner wall time is noisy even on nominally identical CPUs")
	forceNS := flag.Bool("force-ns", false, "gate wall-time metrics even when the CPU models differ")
	floorSpec := flag.String("floors", "", "absolute metric minimums for the new run, as exp.metric=value[,...]")
	ceilingSpec := flag.String("ceilings", "", "absolute metric maximums for the new run, as exp.metric=value[,...]")
	flag.Parse()
	floors, err := parseBounds(*floorSpec, "-floors")
	if err != nil {
		fatal(err)
	}
	ceilings, err := parseBounds(*ceilingSpec, "-ceilings")
	if err != nil {
		fatal(err)
	}
	if *nsThreshold < 0 {
		*nsThreshold = *threshold
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold 0.10] [-force-ns] baseline.json new.json")
		os.Exit(2)
	}
	base, err := loadAny(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := loadAny(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	var failures int
	var records []Record
	switch {
	case base.bench != nil && cur.bench != nil:
		failures = compareBench(base.bench, cur.bench, *threshold, *nsThreshold, *forceNS)
		records = cur.bench.Experiments
	case base.load != nil && cur.load != nil:
		failures = compareLoad(base.load, cur.load, *nsThreshold, *forceNS)
		records = loadRecords(cur.load)
	default:
		fatal(fmt.Errorf("incomparable files: %s and %s are not the same kind of report", flag.Arg(0), flag.Arg(1)))
	}
	failures += checkBounds(records, floors, false)
	failures += checkBounds(records, ceilings, true)
	if failures > 0 {
		fmt.Printf("benchcmp: %d regression(s) beyond the threshold\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchcmp: no regressions")
}

// compareBench gates an nwbench run against its baseline.
func compareBench(base, cur *File, threshold, nsThreshold float64, forceNS bool) int {
	if base.Scale != cur.Scale || base.Seed != cur.Seed {
		fatal(fmt.Errorf("incomparable runs: baseline scale=%d seed=%d vs new scale=%d seed=%d",
			base.Scale, base.Seed, cur.Scale, cur.Seed))
	}
	if base.Tier != cur.Tier {
		fatal(fmt.Errorf("incomparable runs: baseline tier %q vs new tier %q", base.Tier, cur.Tier))
	}
	gateNS := forceNS || (base.CPU != "" && base.CPU == cur.CPU)
	if !gateNS {
		fmt.Printf("benchcmp: ns/op not gated (baseline CPU %q, new CPU %q); gating allocs/op and B/op only\n",
			base.CPU, cur.CPU)
	}

	curByName := make(map[string]Record, len(cur.Experiments))
	for _, r := range cur.Experiments {
		curByName[r.Name] = r
	}
	failures := 0
	for _, old := range base.Experiments {
		now, ok := curByName[old.Name]
		if !ok {
			fmt.Printf("FAIL %-12s missing from new run\n", old.Name)
			failures++
			continue
		}
		failures += compare(old.Name, "allocs/op", old.AllocsOp, now.AllocsOp, threshold, 64)
		failures += compare(old.Name, "B/op", old.BOp, now.BOp, threshold, 4096)
		if gateNS {
			failures += compare(old.Name, "ns/op", old.NsOp, now.NsOp, nsThreshold, 1_000_000)
		} else {
			// Say so per experiment: a reader scanning one experiment's block
			// must see that wall time was skipped, not assume it passed.
			fmt.Printf("skip %-12s %-9s %12d -> %12d (cpu mismatch, not gated)\n",
				old.Name, "ns/op", old.NsOp, now.NsOp)
		}
		delete(curByName, old.Name)
	}
	for name := range curByName {
		fmt.Printf("note %-12s new experiment, no baseline yet\n", name)
	}
	return failures
}

// compareLoad gates an nwload run against its baseline: per-class
// latency quantiles may not grow, and goodput may not shrink, beyond
// the threshold. Latency and goodput are wall-clock measurements, so
// they follow the same same-CPU rule as ns/op.
func compareLoad(base, cur *load.Report, threshold float64, forceNS bool) int {
	if base.Workload != cur.Workload {
		// The two runs measured different things; a ratio between them is
		// meaningless, so the gate must not pretend to have checked it.
		fmt.Printf("skip all latency/goodput gates (workload configs differ, not gated)\n")
		fmt.Printf("  baseline: %s\n  new:      %s\n", base.Workload, cur.Workload)
		return 0
	}
	gate := forceNS || (base.CPU != "" && base.CPU == cur.CPU)
	if !gate {
		fmt.Printf("benchcmp: latency/goodput not gated (baseline CPU %q, new CPU %q); applying floors/ceilings only\n",
			base.CPU, cur.CPU)
	}

	curByClass := make(map[string]load.ClassReport, len(cur.Classes))
	for _, c := range cur.Classes {
		curByClass[c.Class] = c
	}
	failures := 0
	rows := append(append([]load.ClassReport{}, base.Classes...), base.Totals)
	for _, old := range rows {
		now, ok := curByClass[old.Class]
		if old.Class == "totals" {
			now, ok = cur.Totals, true
		}
		if !ok {
			fmt.Printf("FAIL %-12s missing from new run\n", old.Class)
			failures++
			continue
		}
		quantiles := []struct {
			metric   string
			old, now float64
		}{
			{"p50_ms", old.Latency.P50, now.Latency.P50},
			{"p99_ms", old.Latency.P99, now.Latency.P99},
			{"p999_ms", old.Latency.P999, now.Latency.P999},
		}
		for _, q := range quantiles {
			if !gate {
				fmt.Printf("skip %-12s %-9s %12.2f -> %12.2f (cpu mismatch, not gated)\n",
					old.Class, q.metric, q.old, q.now)
				continue
			}
			failures += compareQuantile(old.Class, q.metric, q.old, q.now, threshold)
		}
	}
	switch {
	case !gate:
		fmt.Printf("skip %-12s %-9s %12.2f -> %12.2f (cpu mismatch, not gated)\n",
			"totals", "goodput", base.Goodput, cur.Goodput)
	case cur.Goodput < base.Goodput*(1-threshold)-0.5:
		fmt.Printf("FAIL %-12s %-9s %12.2f -> %12.2f (goodput shrank beyond -%.0f%%)\n",
			"totals", "goodput", base.Goodput, cur.Goodput, threshold*100)
		failures++
	default:
		fmt.Printf("ok   %-12s %-9s %12.2f -> %12.2f\n", "totals", "goodput", base.Goodput, cur.Goodput)
	}
	return failures
}

// compareQuantile gates one latency quantile. Reported quantiles are
// quantized to histogram bucket bounds (load.QuantileGrain apart), so
// the limit always allows at least one grain of growth plus a small
// absolute slack — without it, a one-bucket wobble on an identical
// workload would read as a 25% regression.
func compareQuantile(class, metric string, old, now, threshold float64) int {
	limit := old * (1 + threshold)
	if grain := old*load.QuantileGrain + 5; limit < grain {
		limit = grain
	}
	if now > limit {
		fmt.Printf("FAIL %-12s %-9s %12.2f -> %12.2f (limit %.2f)\n", class, metric, old, now, limit)
		return 1
	}
	fmt.Printf("ok   %-12s %-9s %12.2f -> %12.2f\n", class, metric, old, now)
	return 0
}

// loadRecords flattens an nwload report into Records so floors and
// ceilings address load metrics the same way as bench metrics:
// "totals.p99_ms", "anytime.partials", "full.errors", ...
func loadRecords(rep *load.Report) []Record {
	rows := append(append([]load.ClassReport{}, rep.Classes...), rep.Totals)
	out := make([]Record, 0, len(rows))
	for _, c := range rows {
		m := map[string]float64{
			"submitted":    float64(c.Submitted),
			"completed":    float64(c.Completed),
			"cache_hits":   float64(c.CacheHits),
			"partials":     float64(c.Partials),
			"backpressure": float64(c.Backpressure),
			"canceled":     float64(c.Canceled),
			"errors":       float64(c.Errors),
			"dropped":      float64(c.Dropped),
			"p50_ms":       c.Latency.P50,
			"p99_ms":       c.Latency.P99,
			"p999_ms":      c.Latency.P999,
			"max_ms":       c.Latency.Max,
		}
		if c.Class == "totals" {
			m["goodput"] = rep.Goodput
		}
		out = append(out, Record{Name: c.Class, Metrics: m})
	}
	return out
}

// compare reports (and counts) a regression when now exceeds old by more
// than the fractional threshold. absSlack absorbs jitter on tiny values,
// where a handful of extra allocations is within run-to-run variance but
// far beyond any percentage gate.
func compare(name, metric string, old, now int64, threshold float64, absSlack int64) int {
	limit := old + int64(float64(old)*threshold)
	if limit < old+absSlack {
		limit = old + absSlack
	}
	if now > limit {
		fmt.Printf("FAIL %-12s %-9s %12d -> %12d (+%.1f%%, limit +%.0f%%)\n",
			name, metric, old, now, pct(old, now), threshold*100)
		return 1
	}
	fmt.Printf("ok   %-12s %-9s %12d -> %12d (%+.1f%%)\n", name, metric, old, now, pct(old, now))
	return 0
}

// bound is one -floors or -ceilings entry: experiment exp's metric must
// be >= (floor) or <= (ceiling) val in the new run.
type bound struct {
	exp, metric string
	val         float64
}

func parseBounds(spec, flagName string) ([]bound, error) {
	if spec == "" {
		return nil, nil
	}
	var out []bound
	for _, part := range strings.Split(spec, ",") {
		key, val, okEq := strings.Cut(part, "=")
		exp, metric, okDot := strings.Cut(key, ".")
		v, err := strconv.ParseFloat(val, 64)
		if !okEq || !okDot || exp == "" || metric == "" || err != nil {
			return nil, fmt.Errorf("bad %s entry %q (want exp.metric=value)", flagName, part)
		}
		out = append(out, bound{exp: exp, metric: metric, val: v})
	}
	return out, nil
}

// checkBounds enforces the -floors/-ceilings limits against the new
// run's records. A missing experiment or metric fails too: a bound that
// silently stops being measured is not a passing bound.
func checkBounds(records []Record, bounds []bound, ceiling bool) int {
	word, cmp := "floor", func(got, want float64) bool { return got >= want }
	if ceiling {
		word, cmp = "ceiling", func(got, want float64) bool { return got <= want }
	}
	failures := 0
	for _, b := range bounds {
		var rec *Record
		for i := range records {
			if records[i].Name == b.exp {
				rec = &records[i]
				break
			}
		}
		if rec == nil {
			fmt.Printf("FAIL %-12s %s %s: experiment missing from new run\n", b.exp, word, b.metric)
			failures++
			continue
		}
		got, ok := rec.Metrics[b.metric]
		if !ok {
			fmt.Printf("FAIL %-12s %s %s: metric not reported\n", b.exp, word, b.metric)
			failures++
			continue
		}
		if !cmp(got, b.val) {
			fmt.Printf("FAIL %-12s %-9s %12.3g beyond %s %g\n", b.exp, b.metric, got, word, b.val)
			failures++
			continue
		}
		fmt.Printf("ok   %-12s %-9s %12.3g within %s %g\n", b.exp, b.metric, got, word, b.val)
	}
	return failures
}

func pct(old, now int64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (float64(now) - float64(old)) / float64(old)
}

// loadAny reads a result file, sniffing whether it is an nwbench
// schema-1 file or an nwload report.
func loadAny(path string) (*input, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Schema int    `json:"schema"`
		Tool   string `json:"tool"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if probe.Schema != 1 {
		return nil, fmt.Errorf("%s: unsupported schema %d", path, probe.Schema)
	}
	if probe.Tool == "nwload" {
		var rep load.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &input{load: &rep}, nil
	}
	if probe.Tool != "" {
		return nil, fmt.Errorf("%s: unknown tool %q", path, probe.Tool)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &input{bench: &f}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
