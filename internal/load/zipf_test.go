package load

import (
	"testing"

	"nwforest/internal/rng"
)

// TestZipfGolden pins the draw sequence for a fixed source, the other
// half of the "fixed seed => bit-identical workload" contract.
func TestZipfGolden(t *testing.T) {
	z := NewZipf(8, 1.1)
	src := rng.New(42).Split(9)
	want := []int{5, 2, 0, 0, 2, 2, 1, 5, 2, 6, 0, 0}
	for i, w := range want {
		if got := z.Draw(src); got != w {
			t.Errorf("draw %d = %d, want %d", i, got, w)
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	a, b := NewZipf(16, 0.9), NewZipf(16, 0.9)
	sa, sb := rng.New(5).Split(1), rng.New(5).Split(1)
	for i := 0; i < 1000; i++ {
		if x, y := a.Draw(sa), b.Draw(sb); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

// TestZipfSkew checks the distribution does what the popularity knob
// promises: rank 0 is drawn most often, frequencies are non-increasing
// in rank (within sampling noise), and s=0 is near uniform.
func TestZipfSkew(t *testing.T) {
	const n, draws = 8, 100000
	count := func(s float64) [n]int {
		z := NewZipf(n, s)
		src := rng.New(11).Split(2)
		var c [n]int
		for i := 0; i < draws; i++ {
			c[z.Draw(src)]++
		}
		return c
	}

	skewed := count(1.2)
	for r := 1; r < n; r++ {
		// True Zipf frequencies are strictly decreasing; allow noise.
		if skewed[r] > skewed[r-1]+draws/100 {
			t.Errorf("s=1.2: rank %d drawn %d times > rank %d's %d", r, skewed[r], r-1, skewed[r-1])
		}
	}
	if skewed[0] < 2*skewed[n-1] {
		t.Errorf("s=1.2: rank 0 (%d) not clearly hotter than rank %d (%d)", skewed[0], n-1, skewed[n-1])
	}

	uniform := count(0)
	for r := 0; r < n; r++ {
		if uniform[r] < draws/n*8/10 || uniform[r] > draws/n*12/10 {
			t.Errorf("s=0: rank %d drawn %d times, want ~%d", r, uniform[r], draws/n)
		}
	}
}

func TestZipfRange(t *testing.T) {
	z := NewZipf(3, 2)
	src := rng.New(99)
	for i := 0; i < 10000; i++ {
		if r := z.Draw(src); r < 0 || r >= 3 {
			t.Fatalf("draw %d out of range: %d", i, r)
		}
	}
}
