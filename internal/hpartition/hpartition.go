// Package hpartition implements Theorem 2.1 of the paper: the H-partition
// of Barenboim-Elkin [BE10] and its four corollaries — degree peeling, the
// acyclic t-orientation, the 3t-star-forest decomposition (via
// Cole-Vishkin tree coloring) and the t-list-forest decomposition.
//
// For t = floor((2+eps)·alpha*), the peeling removes an eps/(2+eps)
// fraction of the remaining vertices per round, so it terminates in
// O(log n / eps) rounds. The peeling itself runs on the dist.Engine as a
// genuine message-passing program; the corollaries are O(1)- or
// O(log* n)-round local computations charged to the cost tracker.
package hpartition

import (
	"context"
	"fmt"
	"math"

	"nwforest/internal/dist"
	"nwforest/internal/graph"
	"nwforest/internal/verify"
)

// Result is an H-partition: Class[v] is the peel round in which v was
// removed; every vertex has at most T neighbors in its own or later
// classes.
type Result struct {
	T          int
	Class      []int32
	NumClasses int
}

// Threshold returns the peeling threshold t = floor((2+eps)*alphaStar).
func Threshold(alphaStar int, eps float64) int {
	return int(math.Floor((2 + eps) * float64(alphaStar)))
}

// peelMsg is the "I was removed this round" notification. It carries no
// payload, so its CONGEST size is a single bit.
type peelMsg struct{}

// Bits implements dist.Sized.
func (peelMsg) Bits() int { return 1 }

// peelProg is the per-vertex peeling program.
type peelProg struct {
	t       int
	remDeg  int
	removed bool
	class   int32
}

func (p *peelProg) Step(env *dist.Env, recv []dist.Message) ([]dist.Message, bool) {
	if p.removed {
		return nil, true
	}
	for _, m := range recv {
		// Count only actual peel notifications: one per port, so a
		// neighbor reached by k parallel edges decrements remDeg k times,
		// matching the edge-degree convention of remDeg.
		if _, ok := m.(peelMsg); ok {
			p.remDeg--
		}
	}
	if p.remDeg <= p.t {
		p.removed = true
		p.class = int32(env.Round)
		// The engine delivers messages returned alongside done=true, so
		// the removal notification and the halt fit in the same round.
		// Env.Broadcast reuses the engine's out buffer, and peelMsg is a
		// zero-size type, so the notification allocates nothing.
		return env.Broadcast(peelMsg{}), true
	}
	return nil, false
}

// Partition peels g with threshold t. It fails if the graph does not
// empty within maxRounds rounds (t below the graph's peeling number).
// The consumed rounds are charged to cost. Cancellation of ctx stops
// the peel at a round boundary and returns ctx.Err() unwrapped, so
// doubling-probe callers can tell "t too small" from "caller gave up".
func Partition(ctx context.Context, g *graph.Graph, t, maxRounds int, cost *dist.Cost) (*Result, error) {
	if t < 0 {
		return nil, fmt.Errorf("hpartition: negative threshold %d", t)
	}
	progs := make([]*peelProg, g.N())
	eng := dist.NewEngine(g, func(v int32) dist.Program {
		progs[v] = &peelProg{t: t, remDeg: g.Degree(v)}
		return progs[v]
	})
	rounds, err := eng.Run(ctx, maxRounds)
	// Charge before checking the error: a failed peel (e.g. a doubling
	// probe in EstimateDegeneracy or recolorLeftover) still consumed its
	// whole round budget and sent real messages on the simulated network.
	cost.Charge(rounds, "hpartition/peel")
	cost.ChargeMessages(eng.Messages(), eng.Bits(), "hpartition/peel")
	if ctxErr := ctx.Err(); ctxErr != nil {
		return nil, ctxErr
	}
	if err != nil {
		return nil, fmt.Errorf("hpartition: peeling stuck with t=%d: %w", t, err)
	}
	res := &Result{T: t, Class: make([]int32, g.N())}
	for v, p := range progs {
		res.Class[v] = p.class
		if int(p.class)+1 > res.NumClasses {
			res.NumClasses = int(p.class) + 1
		}
	}
	return res, nil
}

// Before reports whether vertex u precedes v in the acyclic order:
// strictly earlier class, or same class with lower ID.
func (r *Result) Before(u, v int32) bool {
	if r.Class[u] != r.Class[v] {
		return r.Class[u] < r.Class[v]
	}
	return u < v
}

// AcyclicOrientation orients every edge from the endpoint that is earlier
// in the (class, ID) order (Theorem 2.1(2)). The result is acyclic with
// out-degree at most T. O(1) rounds.
func AcyclicOrientation(g *graph.Graph, r *Result, cost *dist.Cost) *verify.Orientation {
	o := verify.NewOrientation(g.M())
	for id, e := range g.Edges() {
		o.FromU[id] = r.Before(e.U, e.V)
	}
	cost.Charge(1, "hpartition/orient")
	return o
}

// OutEdges returns, for each vertex, the IDs of its out-edges under o.
// The per-vertex slices are views into one shared CSR-style backing
// array (grouped by tail, edge-ID order within a vertex), so the whole
// index costs a handful of allocations regardless of N.
func OutEdges(g *graph.Graph, o *verify.Orientation) [][]int32 {
	return g.GroupEdges(func(id int32) int32 { return o.Tail(g, id) })
}

// ForestDecomposition labels the out-edges of every vertex with distinct
// indices in [0, T), yielding a T-forest decomposition where every forest
// is rooted (Barenboim-Elkin's (2+eps)·alpha decomposition). O(1) rounds.
func ForestDecomposition(g *graph.Graph, r *Result, cost *dist.Cost) ([]int32, error) {
	o := AcyclicOrientation(g, r, cost)
	colors := make([]int32, g.M())
	for _, ids := range OutEdges(g, o) {
		if len(ids) > r.T {
			return nil, fmt.Errorf("hpartition: out-degree %d exceeds T=%d", len(ids), r.T)
		}
		for i, id := range ids {
			colors[id] = int32(i)
		}
	}
	cost.Charge(1, "hpartition/label")
	return colors, nil
}

// ListForestDecomposition colors each edge from its palette so that every
// color class is a forest, using the greedy per-vertex process of Theorem
// 2.1(4). Every palette must have at least T colors. O(1) rounds.
func ListForestDecomposition(g *graph.Graph, r *Result, palettes [][]int32, cost *dist.Cost) ([]int32, error) {
	o := AcyclicOrientation(g, r, cost)
	colors := make([]int32, g.M())
	for i := range colors {
		colors[i] = verify.Uncolored
	}
	for _, ids := range OutEdges(g, o) {
		used := make(map[int32]struct{}, len(ids))
		for _, id := range ids {
			picked := verify.Uncolored
			for _, c := range palettes[id] {
				if _, taken := used[c]; !taken {
					picked = c
					break
				}
			}
			if picked == verify.Uncolored {
				return nil, fmt.Errorf("hpartition: palette of edge %d exhausted (size %d, out-degree %d, T=%d)",
					id, len(palettes[id]), len(ids), r.T)
			}
			used[picked] = struct{}{}
			colors[id] = picked
		}
	}
	cost.Charge(1, "hpartition/list-color")
	return colors, nil
}

// StarForestDecomposition computes the 3T-star-forest decomposition of
// Theorem 2.1(3): label out-edges to get T rooted forests, 3-color every
// tree with Cole-Vishkin, and give each edge the color of its parent
// endpoint. Colors are 3*label + parentColor, in [0, 3T).
func StarForestDecomposition(g *graph.Graph, r *Result, cost *dist.Cost) ([]int32, error) {
	o := AcyclicOrientation(g, r, cost)
	outs := OutEdges(g, o)
	colors := make([]int32, g.M())
	maxRounds := 0
	for label := 0; label < r.T; label++ {
		// parent[v] = the head of v's out-edge with this label, if any.
		parent := make([]int32, g.N())
		edgeOf := make([]int32, g.N())
		for i := range parent {
			parent[i] = -1
			edgeOf[i] = -1
		}
		any := false
		for v := int32(0); int(v) < g.N(); v++ {
			if label < len(outs[v]) {
				id := outs[v][label]
				parent[v] = o.Head(g, id)
				edgeOf[v] = id
				any = true
			}
		}
		if !any {
			continue
		}
		vc, rounds, err := ThreeColorRootedForest(parent)
		if err != nil {
			return nil, fmt.Errorf("hpartition: label %d: %w", label, err)
		}
		if rounds > maxRounds {
			maxRounds = rounds
		}
		for v := int32(0); int(v) < g.N(); v++ {
			if edgeOf[v] >= 0 {
				colors[edgeOf[v]] = int32(3*label) + int32(vc[parent[v]])
			}
		}
	}
	// All labels run in parallel in the LOCAL model; charge the slowest.
	cost.Charge(maxRounds+1, "hpartition/star-color")
	return colors, nil
}

// EstimateDegeneracy finds, by doubling, the smallest power-of-two
// threshold t for which the peeling empties the graph within O(log n)
// rounds. The result sandwiches the sparsity measures: it is an upper
// bound on the degeneracy (hence on the arboricity), and at most ~5x the
// pseudo-arboricity, since t >= (2+eps)*alphaStar always peels in
// O(log n / eps) rounds. This removes the paper's standing assumption
// that alpha is globally known, at a factor-2 loss and an O(log^2 n)
// round cost.
func EstimateDegeneracy(ctx context.Context, g *graph.Graph, cost *dist.Cost) (int, error) {
	if g.N() == 0 {
		return 0, nil
	}
	budget := 8*int(math.Ceil(math.Log2(float64(g.N()+2)))) + 16
	for t := 1; ; t *= 2 {
		if _, err := Partition(ctx, g, t, budget, cost); err == nil {
			return t, nil
		}
		// A canceled probe is not "t too small": stop doubling and
		// surface the cancellation instead of an estimate failure.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return 0, ctxErr
		}
		if t > g.N() {
			return 0, fmt.Errorf("hpartition: estimate failed beyond t=%d", t)
		}
	}
}
