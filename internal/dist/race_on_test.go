//go:build race

package dist_test

// raceEnabled reports whether the race detector is instrumenting this
// test binary. Race instrumentation makes background runtime
// allocations (shadow memory, happens-before records) that jitter
// malloc counts by a handful per run, so exact allocation assertions
// are skipped under -race; the uninstrumented test run enforces them.
const raceEnabled = true
