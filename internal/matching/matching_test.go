package matching

import (
	"testing"
	"testing/quick"

	"nwforest/internal/rng"
)

func TestPerfectMatching(t *testing.T) {
	b := NewBipartite(3, 3)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	_, _, size := b.MaxMatching()
	if size != 3 {
		t.Fatalf("matching size = %d, want 3", size)
	}
}

func TestBlockedMatching(t *testing.T) {
	// Both left vertices only see right vertex 0.
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	_, _, size := b.MaxMatching()
	if size != 1 {
		t.Fatalf("matching size = %d, want 1", size)
	}
}

func TestEmpty(t *testing.T) {
	b := NewBipartite(0, 0)
	if _, _, size := b.MaxMatching(); size != 0 {
		t.Fatalf("empty matching size = %d", size)
	}
	b = NewBipartite(3, 4)
	if _, _, size := b.MaxMatching(); size != 0 {
		t.Fatalf("edgeless matching size = %d", size)
	}
}

func TestAugmentingPathNeeded(t *testing.T) {
	// Greedy l0->r0 blocks l1 unless the path augments: l0-r0, l0-r1, l1-r0.
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	matchL, matchR, size := b.MaxMatching()
	if size != 2 {
		t.Fatalf("matching size = %d, want 2", size)
	}
	if matchL[0] != 1 || matchL[1] != 0 {
		t.Fatalf("matchL = %v, want [1 0]", matchL)
	}
	if matchR[0] != 1 || matchR[1] != 0 {
		t.Fatalf("matchR = %v, want [1 0]", matchR)
	}
}

// consistent checks the matching invariants: matched pairs are mutual and
// every matched edge exists in the graph.
func consistent(b *Bipartite, matchL, matchR []int32) bool {
	for l := 0; l < b.NL(); l++ {
		r := matchL[l]
		if r == -1 {
			continue
		}
		if matchR[r] != int32(l) {
			return false
		}
		ok := false
		for _, rr := range b.adj[l] {
			if rr == r {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for r := 0; r < b.NR(); r++ {
		if l := matchR[r]; l != -1 && matchL[l] != int32(r) {
			return false
		}
	}
	return true
}

// maxMatchingBrute computes the maximum matching size by augmenting-path
// search without layering (correct, slower).
func maxMatchingBrute(b *Bipartite) int {
	matchR := make([]int32, b.nR)
	for i := range matchR {
		matchR[i] = -1
	}
	var try func(l int32, seen []bool) bool
	try = func(l int32, seen []bool) bool {
		for _, r := range b.adj[l] {
			if seen[r] {
				continue
			}
			seen[r] = true
			if matchR[r] == -1 || try(matchR[r], seen) {
				matchR[r] = l
				return true
			}
		}
		return false
	}
	size := 0
	for l := 0; l < b.nL; l++ {
		if try(int32(l), make([]bool, b.nR)) {
			size++
		}
	}
	return size
}

func TestRandomAgainstBrute(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nL := 1 + r.Intn(12)
		nR := 1 + r.Intn(12)
		b := NewBipartite(nL, nR)
		for l := 0; l < nL; l++ {
			for rr := 0; rr < nR; rr++ {
				if r.Bernoulli(0.3) {
					b.AddEdge(l, rr)
				}
			}
		}
		matchL, matchR, size := b.MaxMatching()
		if !consistent(b, matchL, matchR) {
			return false
		}
		return size == maxMatchingBrute(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatching(b *testing.B) {
	r := rng.New(1)
	const n = 64
	bg := NewBipartite(n, n)
	for l := 0; l < n; l++ {
		for rr := 0; rr < n; rr++ {
			if r.Bernoulli(0.2) {
				bg.AddEdge(l, rr)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bg.MaxMatching()
	}
}
