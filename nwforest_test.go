package nwforest_test

import (
	"testing"

	"nwforest"
	"nwforest/internal/gen"
)

func TestDecomposePublicAPI(t *testing.T) {
	g := gen.ForestUnion(200, 3, 1)
	d, err := nwforest.Decompose(g, nwforest.Options{Alpha: 3, Eps: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := nwforest.Verify(g, d.Colors, d.NumForests); err != nil {
		t.Fatal(err)
	}
	if d.Rounds == 0 {
		t.Fatal("no rounds reported")
	}
	if len(d.Phases) == 0 {
		t.Fatal("no phase breakdown")
	}
	if d.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestNewGraphAndArboricity(t *testing.T) {
	g, err := nwforest.NewGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	alpha, colors := nwforest.Arboricity(g)
	if alpha != 2 {
		t.Fatalf("arboricity = %d, want 2", alpha)
	}
	if err := nwforest.Verify(g, colors, alpha); err != nil {
		t.Fatal(err)
	}
	if ps := nwforest.PseudoArboricity(g); ps != 2 {
		t.Fatalf("pseudo-arboricity = %d, want 2", ps)
	}
}

func TestNewGraphRejectsSelfLoop(t *testing.T) {
	if _, err := nwforest.NewGraph(2, [][2]int{{1, 1}}); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestDecomposeListPublicAPI(t *testing.T) {
	g := gen.ForestUnion(100, 16, 2)
	palettes := nwforest.FullPalettes(g.M(), 24)
	d, err := nwforest.DecomposeList(g, palettes, nwforest.Options{Alpha: 16, Eps: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumForests == 0 || d.Rounds == 0 {
		t.Fatalf("degenerate result: %v", d)
	}
}

func TestDecomposeStarsPublicAPI(t *testing.T) {
	g := gen.SimpleForestUnion(200, 8, 3)
	d, err := nwforest.DecomposeStars(g, nil, nwforest.Options{Alpha: 9, Eps: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := nwforest.VerifyStars(g, d.Colors, d.NumForests); err != nil {
		t.Fatal(err)
	}
	if d.Diameter > 2 {
		t.Fatalf("star forest with diameter %d", d.Diameter)
	}
}

func TestDecomposeStarsList24PublicAPI(t *testing.T) {
	g := gen.MultiplyEdges(gen.Grid(8, 8), 2)
	alphaStar := 4
	k := 5*alphaStar - 1
	palettes := nwforest.FullPalettes(g.M(), k)
	d, err := nwforest.DecomposeStarsList24(g, palettes, alphaStar, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := nwforest.VerifyStars(g, d.Colors, k); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeBEBaseline(t *testing.T) {
	g := gen.ForestUnion(300, 4, 4)
	d, err := nwforest.DecomposeBE(g, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := nwforest.Verify(g, d.Colors, d.NumForests); err != nil {
		t.Fatal(err)
	}
	// Baseline uses up to (2.5)*4 = 10 forests.
	if d.NumForests > 10 {
		t.Fatalf("baseline used %d forests", d.NumForests)
	}
}

func TestOurAlgorithmBeatsBaselineOnColors(t *testing.T) {
	g := gen.ForestUnion(400, 6, 5)
	ours, err := nwforest.Decompose(g, nwforest.Options{Alpha: 6, Eps: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	base, err := nwforest.DecomposeBE(g, 6, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if ours.NumForests >= base.NumForests {
		t.Fatalf("ours=%d forests, baseline=%d: expected strict improvement",
			ours.NumForests, base.NumForests)
	}
}

func TestOrientPublicAPI(t *testing.T) {
	g := gen.ForestUnion(200, 10, 6)
	o, err := nwforest.Orient(g, nwforest.Options{Alpha: 10, Eps: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// (1+eps)alpha + O(1): must beat the trivial 2*alpha bound once the
	// additive constants are amortized over a larger alpha.
	if o.MaxOutDegree >= 20 {
		t.Fatalf("orientation out-degree %d too large", o.MaxOutDegree)
	}
	if o.Rounds == 0 {
		t.Fatal("no rounds reported")
	}
	if len(o.Phases) == 0 {
		t.Fatal("no phase breakdown")
	}
	sum := 0
	for _, p := range o.Phases {
		sum += p.Rounds
	}
	if sum != o.Rounds {
		t.Fatalf("phase rounds sum to %d, total is %d", sum, o.Rounds)
	}
}

func TestOptionsKeyCanonical(t *testing.T) {
	a := nwforest.Options{Alpha: 3, Eps: 0.5, Seed: 1}
	if a.Key() != (nwforest.Options{Alpha: 3, Eps: 0.5, Seed: 1}).Key() {
		t.Fatal("equal Options produced different keys")
	}
	variants := []nwforest.Options{
		{Alpha: 4, Eps: 0.5, Seed: 1},
		{Alpha: 3, Eps: 0.25, Seed: 1},
		{Alpha: 3, Eps: 0.5, Seed: 2},
		{Alpha: 3, Eps: 0.5, Seed: 1, ReduceDiameter: true},
		{Alpha: 3, Eps: 0.5, Seed: 1, Sampled: true},
	}
	seen := map[string]bool{a.Key(): true}
	for _, v := range variants {
		if seen[v.Key()] {
			t.Fatalf("Options %+v collides with an earlier key %q", v, v.Key())
		}
		seen[v.Key()] = true
	}
	// Nearby-but-distinct floats must not collide.
	b := nwforest.Options{Alpha: 3, Eps: 0.5 + 1e-12, Seed: 1}
	if b.Key() == a.Key() {
		t.Fatal("distinct Eps bit patterns share a key")
	}
}

func TestDiameterHelper(t *testing.T) {
	g, err := nwforest.NewGraph(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if d := nwforest.Diameter(g, []int32{0, 0}); d != 2 {
		t.Fatalf("Diameter = %d, want 2", d)
	}
}
