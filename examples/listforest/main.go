// List forest decomposition example: frequency-constrained link coloring
// (Theorem 4.10 of the paper).
//
// Each link (edge) of a wireless backbone may only operate on a subset of
// the channel space — regulatory and hardware constraints differ per
// link. Coloring every link with an allowed channel so that each channel
// class is cycle-free (a forest) gives loop-free per-channel routing.
// That is exactly list forest decomposition: Seymour proved alpha channels
// per palette always suffice; the paper computes it locally with
// (1+eps)*alpha-size palettes.
package main

import (
	"fmt"
	"log"

	"nwforest"
	"nwforest/internal/gen"
	"nwforest/internal/rng"
)

func main() {
	// Backbone with arboricity 24 (dense deployment).
	alpha := 24
	g := gen.ForestUnion(400, alpha, 11)
	fmt.Printf("backbone: n=%d m=%d arboricity<=%d\n", g.N(), g.M(), alpha)

	// Per-link palettes: 36 channels drawn from a 48-channel space, banned
	// channels differing per link.
	channels := 48
	need := 36 // (1+0.5)*24
	src := rng.New(5)
	palettes := make([][]int32, g.M())
	for id := range palettes {
		for _, c := range src.Split(uint64(id)).Sample(channels, need) {
			palettes[id] = append(palettes[id], int32(c))
		}
	}

	d, err := nwforest.DecomposeList(g, palettes, nwforest.Options{Alpha: alpha, Eps: 0.5, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channel assignment: %d distinct channels used, %d LOCAL rounds\n",
		d.NumForests, d.Rounds)

	// Every link on an allowed channel, every channel loop-free.
	for id, c := range d.Colors {
		ok := false
		for _, q := range palettes[id] {
			if q == c {
				ok = true
				break
			}
		}
		if !ok {
			log.Fatalf("link %d assigned banned channel %d", id, c)
		}
	}
	fmt.Println("verified: all links on allowed channels, all channels loop-free")
}
